package dvfs

import (
	"pcstall/internal/chaos"
	"pcstall/internal/oracle"
	"pcstall/internal/predict"
	"pcstall/internal/sim"
	"pcstall/internal/telemetry"
)

// runTelemetry is the runner's metric bundle: controller-level counters
// (epochs, transitions, objective evaluations), prediction-quality
// instrumentation (mispredict magnitude and direction), and the nested
// sim/predict/oracle bundles. Built once per run when RunConfig.Metrics
// is set; every method is nil-receiver-safe so the uninstrumented path
// costs one nil check per epoch.
type runTelemetry struct {
	sim     *sim.Telemetry
	predict *predict.Telemetry

	runs        *telemetry.Counter
	epochs      *telemetry.Counter
	transitions *telemetry.Counter
	objEvals    *telemetry.Counter

	predOver     *telemetry.Counter
	predUnder    *telemetry.Counter
	mispredMag   *telemetry.Histogram
	epochSpanPs  *telemetry.Histogram
	oracleBundle *oracle.Telemetry

	deadlocks *telemetry.Counter
	sanitized *telemetry.Counter

	chaosNoisy     *telemetry.Counter
	chaosDropped   *telemetry.Counter
	chaosStale     *telemetry.Counter
	chaosTransFail *telemetry.Counter
	chaosJitterPs  *telemetry.Counter
	chaosFlipped   *telemetry.Counter
}

// newRunTelemetry builds the bundle on r (nil r yields nil).
func newRunTelemetry(r *telemetry.Registry) *runTelemetry {
	if r == nil {
		return nil
	}
	return &runTelemetry{
		sim:          sim.NewTelemetry(r),
		predict:      predict.NewTelemetry(r),
		runs:         r.Counter("dvfs_runs_total", "completed application runs"),
		epochs:       r.Counter("dvfs_epochs_total", "DVFS control epochs executed"),
		transitions:  r.Counter("dvfs_transitions_total", "V/f transitions applied across domains"),
		objEvals:     r.Counter("dvfs_objective_evals_total", "objective Choose evaluations (one per domain decision)"),
		predOver:     r.Counter("predict_over_total", "domain-epochs where the prediction exceeded reality"),
		predUnder:    r.Counter("predict_under_total", "domain-epochs where the prediction fell short of reality"),
		mispredMag:   r.Histogram("predict_mispredict_rel_error", "relative mispredict magnitude |pred-actual|/max(actual,1) per domain-epoch", telemetry.RatioBuckets),
		epochSpanPs:  r.Histogram("dvfs_epoch_span_ps", "realized epoch spans, picoseconds", epochSpanBuckets),
		oracleBundle: oracle.NewTelemetry(r),

		deadlocks: r.Counter("dvfs_run_deadlocks_total", "runs terminated by the simulation watchdog (deadlock or cycle budget)"),
		sanitized: r.Counter("dvfs_sanitized_predictions_total", "non-finite per-state predictions floored by the sanity clamp"),

		chaosNoisy:     r.Counter("chaos_noisy_counters_total", "telemetry counters perturbed by injected sensor noise"),
		chaosDropped:   r.Counter("chaos_dropped_cus_total", "per-CU epoch samples dropped by fault injection"),
		chaosStale:     r.Counter("chaos_stale_cus_total", "per-CU epoch samples served stale by fault injection"),
		chaosTransFail: r.Counter("chaos_failed_transitions_total", "V/f transitions failed by fault injection"),
		chaosJitterPs:  r.Counter("chaos_transition_jitter_ps_total", "extra settle latency injected into transitions, picoseconds"),
		chaosFlipped:   r.Counter("chaos_flipped_pcs_total", "predictor lookup PCs corrupted by fault injection"),
	}
}

// epochSpanBuckets cover 0.1µs .. 1ms in picoseconds.
var epochSpanBuckets = []float64{
	1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8, 2.5e8, 5e8, 1e9,
}

// recordEpoch folds one executed epoch into the bundle.
func (m *runTelemetry) recordEpoch(es *sim.EpochSample) {
	if m == nil {
		return
	}
	m.epochs.Inc()
	m.epochSpanPs.Observe(float64(es.End - es.Start))
	m.sim.RecordEpoch(es)
}

// recordPrediction scores one domain-epoch's prediction. Idle
// domain-epochs (nothing committed, nothing predicted) are skipped, the
// same exclusion the accuracy metric applies.
func (m *runTelemetry) recordPrediction(pred, actual float64) {
	if m == nil {
		return
	}
	if actual <= 0 && pred < 1 {
		return
	}
	den := actual
	if den < 1 {
		den = 1
	}
	switch {
	case pred > actual:
		m.predOver.Inc()
	case pred < actual:
		m.predUnder.Inc()
	}
	diff := pred - actual
	if diff < 0 {
		diff = -diff
	}
	m.mispredMag.Observe(diff / den)
}

// recordDeadlock marks a run stopped by the simulation watchdog.
func (m *runTelemetry) recordDeadlock() {
	if m == nil {
		return
	}
	m.deadlocks.Inc()
}

// recordChaos folds one run's injected-fault totals into the bundle.
func (m *runTelemetry) recordChaos(st chaos.Stats) {
	if m == nil {
		return
	}
	m.chaosNoisy.Add(st.NoisyCounters)
	m.chaosDropped.Add(st.DroppedCUs)
	m.chaosStale.Add(st.StaleCUs)
	m.chaosTransFail.Add(st.FailedTransitions)
	m.chaosJitterPs.Add(st.JitterPs)
	m.chaosFlipped.Add(st.FlippedPCs)
}

// pcTabler is implemented by policies built on PC-indexed tables.
type pcTabler interface {
	Tables() []*predict.PCTable
}

// recordRunEnd folds run-cumulative state into the bundle: transition
// counts, the L2's lifetime stats, and — for PC-table policies — the
// tables' lifetime hit/eviction accounting.
func (m *runTelemetry) recordRunEnd(g *sim.GPU, pol Policy, transitions int64) {
	if m == nil {
		return
	}
	m.runs.Inc()
	m.transitions.Add(transitions)
	m.sim.RecordRunEnd(g)
	if pt, ok := pol.(pcTabler); ok {
		for _, t := range pt.Tables() {
			m.predict.RecordTable(t)
		}
	}
}
