package dvfs

import (
	"context"
	"fmt"

	"pcstall/internal/chaos"
	"pcstall/internal/clock"
	"pcstall/internal/metrics"
	"pcstall/internal/oracle"
	"pcstall/internal/power"
	"pcstall/internal/sim"
	"pcstall/internal/telemetry"
	"pcstall/internal/trace"
	"pcstall/internal/tracing"
)

// RunConfig parameterizes one application run under a policy.
type RunConfig struct {
	// Epoch is the fixed DVFS time epoch (§3.1).
	Epoch clock.Time
	// Obj is the objective function.
	Obj Objective
	// PM is the power model.
	PM *power.Model
	// Transition overrides the V/f transition latency; 0 selects the
	// paper's epoch-dependent latency (clock.TransitionLatency).
	Transition clock.Time
	// MaxTime caps simulated time as a runaway guard; 0 means 100 ms.
	MaxTime clock.Time
	// Record keeps per-epoch records in the result (costs memory).
	Record bool
	// OracleSamples overrides the sampler's fork count for policies
	// that need truth (0 = one per V/f state).
	OracleSamples int
	// Trace, when non-nil, receives one EpochEvent per epoch.
	Trace trace.Recorder
	// InstrWindow switches the controller from fixed-time epochs to
	// fixed-instruction windows (the §3.1 alternative the paper argues
	// against): a boundary occurs once the GPU commits this many
	// instructions (or after 8×Epoch as a starvation guard). Epoch
	// remains the stepping quantum and the policies' assumed duration.
	InstrWindow int64
	// Thermal enables temperature-dependent leakage accounting (§5):
	// each domain carries a lumped-RC temperature that power feeds and
	// leakage reads. Nil disables it (leakage at nominal temperature).
	Thermal *power.Thermal
	// Metrics, when non-nil, receives run telemetry (epoch counters,
	// stall accounting, prediction error, oracle fork costs — see
	// internal/telemetry). Recording never alters run results; with a
	// nil registry the instrumentation reduces to per-epoch nil checks.
	Metrics *telemetry.Registry
	// Ctx, when non-nil, is polled at every epoch boundary: once it is
	// cancelled the run stops and returns the partial Result together
	// with the context's error. This is how batch orchestration winds
	// down in-flight simulations on fail-fast, per-job timeout, or
	// SIGINT without waiting out the epoch sweep; a nil Ctx costs one
	// nil check per epoch.
	Ctx context.Context
	// Chaos configures deterministic fault injection (sensor noise and
	// drops, transition failures and jitter, PC-signature corruption)
	// for this run. The zero value injects nothing and leaves the run
	// byte-identical to an un-instrumented one.
	Chaos chaos.Config
	// MaxCycles bounds the run's total CU cycle events as a cooperative
	// watchdog (0 = unbounded). A run that exhausts the budget — or
	// stops making progress entirely — terminates with a wrapped
	// *sim.DeadlockError instead of hanging.
	MaxCycles int64
}

// EpochRecord is one epoch's outcome (kept when RunConfig.Record is set).
type EpochRecord struct {
	Start, End clock.Time
	// Freq[d] is the frequency domain d ran.
	Freq []clock.Freq
	// PredI[d] is the policy's predicted instructions at the chosen
	// state; ActualI[d] what really committed.
	PredI   []float64
	ActualI []float64
	// EnergyJ is the GPU core energy of the epoch.
	EnergyJ float64
}

// Result summarizes one run.
type Result struct {
	Policy    string
	Objective string
	// Totals feeds EDP/ED²P computation. TimeS is completion time (or
	// the cap, if Truncated).
	Totals metrics.RunTotals
	// Truncated reports the run hit MaxTime before the app finished.
	Truncated bool
	Epochs    int
	// Accuracy is the mean §6.1 prediction accuracy across domain-epochs
	// (NaN-free: zero when the policy does not predict).
	Accuracy  float64
	AccuracyN int64
	// Residency[k] is the fraction of domain-time spent at state k
	// (Fig. 16).
	Residency []float64
	// Transitions counts V/f transitions across domains.
	Transitions int64
	// FinalTempC holds the per-domain node temperatures at run end when
	// thermal accounting is enabled (nil otherwise).
	FinalTempC []float64
	// Chaos reports the faults injected during the run (zero when fault
	// injection is disabled).
	Chaos chaos.Stats
	// Records holds per-epoch detail when requested.
	Records []EpochRecord
}

// RunJob is the job-shaped entry point batch orchestration uses: both
// the GPU and the policy are constructed inside the call, so a job can
// be described by pure factories and executed on any worker goroutine
// without the caller pre-building (and accidentally sharing) mutable
// simulator or policy state across jobs.
func RunJob(build func() (*sim.GPU, error), newPol func() Policy, cfg RunConfig) (Result, error) {
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("dvfs: job cancelled before start: %w", err)
		}
	}
	g, err := build()
	if err != nil {
		return Result{}, fmt.Errorf("dvfs: building GPU: %w", err)
	}
	return Run(g, newPol(), cfg)
}

// Run executes the application loaded in g to completion under the given
// policy. g must be freshly constructed; it is consumed by the run.
func Run(g *sim.GPU, pol Policy, cfg RunConfig) (Result, error) {
	if cfg.Epoch <= 0 {
		return Result{}, fmt.Errorf("dvfs: epoch %d", cfg.Epoch)
	}
	if cfg.Obj == nil || cfg.PM == nil {
		return Result{}, fmt.Errorf("dvfs: objective and power model are required")
	}
	if err := cfg.Chaos.Validate(); err != nil {
		return Result{}, fmt.Errorf("dvfs: %w", err)
	}
	if cfg.MaxCycles < 0 {
		return Result{}, fmt.Errorf("dvfs: max cycles %d < 0", cfg.MaxCycles)
	}
	if cfg.MaxCycles > 0 {
		g.Cfg.MaxCycles = cfg.MaxCycles
	}
	maxTime := cfg.MaxTime
	if maxTime == 0 {
		maxTime = 100 * clock.Millisecond
	}
	trans := cfg.Transition
	if trans == 0 {
		trans = clock.TransitionLatency(cfg.Epoch)
	}
	grid := g.Cfg.Grid
	dmap := g.Cfg.Domains
	nd := dmap.NumDomains()
	k := grid.Count()
	simds := g.Cfg.SIMDsPerCU

	ctx := &Context{
		G:           g,
		Grid:        grid,
		DMap:        dmap,
		Epoch:       cfg.Epoch,
		OccPerInstr: make([]float64, nd),
		PredictE: func(d int, f clock.Freq, predI float64) float64 {
			return cfg.PM.PredictEpochEnergyJ(f, predI, dmap.CUsPerDomain, simds, cfg.Epoch) +
				cfg.PM.UncoreShareJ(cfg.Epoch, nd)
		},
	}

	tm := newRunTelemetry(cfg.Metrics)
	if tm != nil {
		ctx.ObjEvals = tm.objEvals
		ctx.Sanitized = tm.sanitized
	}
	var ch *chaos.Engine
	if cfg.Chaos.Enabled() {
		ch = chaos.NewEngine(cfg.Chaos)
		ctx.Chaos = ch
	}
	if hp, ok := pol.(*Hardened); ok {
		hp.bindTelemetry(cfg.Metrics)
	}

	var sampler *oracle.Sampler
	if pol.Truth() != NoTruth {
		sampler = &oracle.Sampler{
			Grid:      grid,
			PM:        cfg.PM,
			CollectWF: pol.Truth() == WFTruth,
			Samples:   cfg.OracleSamples,
		}
		if tm != nil {
			sampler.Metrics = tm.oracleBundle
		}
	}

	pol.Reset()
	pred := make([][]float64, nd)
	for d := range pred {
		pred[d] = make([]float64, k)
	}
	choice := make([]int, nd)
	res := Result{
		Policy:    pol.Name(),
		Objective: cfg.Obj.Name(),
		Residency: make([]float64, k),
	}
	// The run span rides cfg.Ctx (nil-safe: untraced runs get a nil span
	// whose methods no-op). Attributes land at End so the span reports
	// final epoch/transition counts on every exit path.
	_, runSpan := tracing.Start(cfg.Ctx, "dvfs.run",
		tracing.String("policy", pol.Name()),
		tracing.String("objective", cfg.Obj.Name()))
	defer func() {
		if runSpan == nil {
			return
		}
		runSpan.SetAttr("epochs", fmt.Sprint(res.Epochs))
		runSpan.SetAttr("transitions", fmt.Sprint(res.Transitions))
		runSpan.SetAttr("truncated", fmt.Sprint(res.Truncated))
		runSpan.End()
	}()
	var temps []float64
	if cfg.Thermal != nil {
		temps = make([]float64, nd)
		for d := range temps {
			temps[d] = cfg.Thermal.AmbientC
		}
	}
	var (
		elapsed   *sim.EpochSample
		sampleBuf sim.EpochSample
		prevTruth *oracle.Truth
		acc       metrics.Welford
		energy    float64
		domTime   float64
	)

	for !g.Finished && g.Now < maxTime {
		if cfg.Ctx != nil {
			select {
			case <-cfg.Ctx.Done():
				res.Truncated = true
				return res, fmt.Errorf("dvfs: run cancelled after %d epochs: %w", res.Epochs, cfg.Ctx.Err())
			default:
			}
		}
		if sampler != nil {
			ctx.NextTruth = sampler.SampleNext(g, cfg.Epoch)
		}
		ctx.PrevTruth = prevTruth
		// Policies observe the elapsed epoch through the fault injector;
		// the runner's own accounting below stays on the real sample.
		observed := elapsed
		if ch != nil && elapsed != nil {
			observed = ch.PerturbEpoch(elapsed)
		}
		pol.Decide(ctx, observed, cfg.Obj, pred, choice)
		for d := 0; d < nd; d++ {
			f := grid.State(choice[d])
			if ch != nil && f != g.Domains[d].Freq {
				// Draw actuation faults only for real changes, so the
				// fault stream does not depend on how often a policy
				// re-requests its current operating point.
				fail, extra := ch.Transition(trans)
				g.SetDomainFreqOutcome(d, f, trans+extra, fail)
			} else {
				g.SetDomainFreq(d, f, trans)
			}
		}

		if cfg.InstrWindow > 0 {
			target := g.TotalCommitted + cfg.InstrWindow
			guard := g.Now + 8*cfg.Epoch
			step := cfg.Epoch / 8
			if step < 1 {
				step = 1
			}
			for !g.Finished && g.Stuck == nil && g.TotalCommitted < target && g.Now < guard && g.Now < maxTime {
				g.RunUntil(g.Now + step)
			}
		} else {
			g.RunUntil(g.Now + cfg.Epoch)
		}
		if g.Stuck != nil {
			res.Truncated = true
			res.Chaos = ch.Stats()
			tm.recordDeadlock()
			tm.recordChaos(res.Chaos)
			return res, fmt.Errorf("dvfs: run stuck after %d epochs: %w", res.Epochs, g.Stuck)
		}
		g.CollectEpoch(&sampleBuf)
		elapsed = &sampleBuf
		tm.recordEpoch(&sampleBuf)
		dur := sampleBuf.End - sampleBuf.Start
		partial := g.Finished && dur < cfg.Epoch && cfg.InstrWindow == 0
		if cfg.InstrWindow > 0 {
			partial = g.Finished
		}

		var tev *trace.EpochEvent
		if cfg.Trace != nil {
			tev = &trace.EpochEvent{
				Index:   res.Epochs,
				StartPs: int64(sampleBuf.Start),
				EndPs:   int64(sampleBuf.End),
				Domains: make([]trace.DomainEvent, nd),
			}
		}
		var rec *EpochRecord
		if cfg.Record {
			res.Records = append(res.Records, EpochRecord{
				Start: sampleBuf.Start, End: sampleBuf.End,
				Freq:    make([]clock.Freq, nd),
				PredI:   make([]float64, nd),
				ActualI: make([]float64, nd),
			})
			rec = &res.Records[len(res.Records)-1]
		}

		for d := 0; d < nd; d++ {
			var committed, issue, occPs int64
			lo, hi := dmap.CUs(d)
			for cu := lo; cu < hi; cu++ {
				committed += sampleBuf.CUs[cu].C.Committed
				issue += sampleBuf.CUs[cu].C.IssueSlots
				occPs += sampleBuf.CUs[cu].C.OccupancyPs
			}
			if committed > 0 {
				period := float64(grid.State(choice[d]).PeriodPs())
				ctx.OccPerInstr[d] = float64(occPs) / period / float64(committed)
			}
			var e float64
			if cfg.Thermal != nil {
				var perCU float64
				e, perCU = cfg.PM.DomainEpochEnergyJAt(grid.State(choice[d]), issue,
					dmap.CUsPerDomain, simds, dur, temps[d], *cfg.Thermal)
				temps[d] = cfg.Thermal.Step(temps[d], perCU, dur)
			} else {
				e = cfg.PM.DomainEpochEnergyJ(grid.State(choice[d]), issue, dmap.CUsPerDomain, simds, dur)
			}
			energy += e
			res.Residency[choice[d]] += float64(dur)
			domTime += float64(dur)
			// Idle domains (no work and none predicted) are excluded:
			// a trivially correct 0≈0 would dilute the metric.
			if pol.Predicts() && res.Epochs > 0 && !partial {
				if committed > 0 || pred[d][choice[d]] >= 1 {
					acc.Add(metrics.PredAccuracy(pred[d][choice[d]], float64(committed)))
				}
				tm.recordPrediction(pred[d][choice[d]], float64(committed))
			}
			if rec != nil {
				rec.Freq[d] = grid.State(choice[d])
				rec.PredI[d] = pred[d][choice[d]]
				rec.ActualI[d] = float64(committed)
				rec.EnergyJ += e
			}
			if tev != nil {
				tev.Domains[d] = trace.DomainEvent{
					Domain:  d,
					FreqMHz: int(grid.State(choice[d])),
					PredI:   pred[d][choice[d]],
					ActualI: float64(committed),
					EnergyJ: e,
				}
			}
		}
		if tev != nil {
			if err := cfg.Trace.Epoch(*tev); err != nil {
				return res, fmt.Errorf("dvfs: trace recorder: %w", err)
			}
		}
		prevTruth = ctx.NextTruth
		res.Epochs++
		// Epoch-batched trace events: one instant per 1024 epochs keeps
		// the hot loop at a single nil check when tracing is off.
		if runSpan != nil && res.Epochs&1023 == 0 {
			runSpan.Event("epochs", tracing.Int("n", int64(res.Epochs)))
		}
	}

	res.Truncated = !g.Finished
	for d := range g.Domains {
		res.Transitions += g.Domains[d].Transitions
	}
	energy += cfg.PM.UncoreEnergyJ(g.Now)
	energy += cfg.PM.TransitionEnergyJ(res.Transitions)
	res.Totals = metrics.RunTotals{
		EnergyJ:   energy,
		TimeS:     float64(g.Now) * 1e-12,
		Committed: g.TotalCommitted,
	}
	res.Accuracy = acc.Mean
	res.AccuracyN = acc.N
	res.FinalTempC = temps
	res.Chaos = ch.Stats()
	tm.recordRunEnd(g, pol, res.Transitions)
	tm.recordChaos(res.Chaos)
	if domTime > 0 {
		for i := range res.Residency {
			res.Residency[i] /= domTime
		}
	}
	return res, nil
}
