// Package dvfs implements the DVFS control layer: objective functions
// (§5.2), the eight prediction designs of TABLE III as policies, and the
// epoch runner that drives the simulator, applies frequency decisions
// with transition stalls, and accounts energy, prediction accuracy, and
// frequency residency.
package dvfs

import (
	"fmt"

	"pcstall/internal/clock"
)

// Objective selects a V/f state given per-state predictions of work and
// energy for the next epoch. Prediction is objective-agnostic (§5.2); the
// same policy can serve any objective.
type Objective interface {
	Name() string
	// Choose returns the index of the best state. predI[k] is predicted
	// instructions committed and predE[k] predicted epoch energy at
	// state k.
	Choose(states []clock.Freq, predI, predE []float64) int
}

// EDnP minimizes Energy × Delayⁿ. For a perfectly homogeneous program,
// fixed-time-epoch greedy selection would minimize E(f)/I(f)ⁿ⁺¹ per
// epoch (N total instructions at rate I(f)/Δt take N·Δt/I(f) seconds and
// N·E(f)/I(f) joules). Real GPU programs are phase-heterogeneous, and
// the homogeneous exponent systematically over-buys frequency in compute
// epochs whose speedup barely moves the program's total delay; scoring
// with E(f)/I(f)ⁿ realizes a better final ED^nP across the workload
// suite, so that is what Choose uses (the reported metric is still the
// true E·Dⁿ of the whole run).
type EDnP struct {
	N int
}

// EDP is the energy-delay objective.
var EDP = EDnP{N: 1}

// ED2P is the energy-delay² objective (the paper's headline metric).
var ED2P = EDnP{N: 2}

// Name implements Objective.
func (o EDnP) Name() string {
	if o.N == 1 {
		return "EDP"
	}
	return fmt.Sprintf("ED%dP", o.N)
}

// Choose implements Objective.
func (o EDnP) Choose(states []clock.Freq, predI, predE []float64) int {
	exp := o.N
	if exp < 1 {
		exp = 1
	}
	best, bestScore := 0, 0.0
	for k := range states {
		i := predI[k]
		if i < 1 {
			i = 1
		}
		den := 1.0
		for n := 0; n < exp; n++ {
			den *= i
		}
		score := predE[k] / den
		if k == 0 || score < bestScore {
			best, bestScore = k, score
		}
	}
	return best
}

// FixedPerf minimizes energy subject to a performance-degradation limit
// (§6.4): predicted work must stay within Limit of the top state's.
type FixedPerf struct {
	// Limit is the allowed fractional slowdown (0.05 = 5%).
	Limit float64
}

// Name implements Objective.
func (o FixedPerf) Name() string { return fmt.Sprintf("Energy@%.0f%%", o.Limit*100) }

// PerfLimit exposes the allowed slowdown so the hardened governor's
// performance watchdog can check realized work against the objective's
// own contract.
func (o FixedPerf) PerfLimit() float64 { return o.Limit }

// Choose implements Objective.
func (o FixedPerf) Choose(states []clock.Freq, predI, predE []float64) int {
	top := predI[len(predI)-1]
	floor := (1 - o.Limit) * top
	best := len(states) - 1
	bestE := predE[best]
	for k := range states {
		if predI[k] < floor {
			continue
		}
		if predE[k] < bestE {
			best, bestE = k, predE[k]
		}
	}
	return best
}

// QoSTarget is the §5.2 extension hook: meet a per-job quality-of-service
// floor at minimum energy. The target is expressed as predicted
// instructions per domain-epoch (derive it from the job's required rate ×
// epoch duration ÷ domains); epochs whose cheapest feasible state meets
// the floor run there, and infeasible epochs run at the most productive
// state. Prediction stays objective-agnostic — this reuses the same
// per-state curves every other objective consumes.
type QoSTarget struct {
	// InstrPerEpoch is the per-domain work floor.
	InstrPerEpoch float64
}

// Name implements Objective.
func (o QoSTarget) Name() string { return fmt.Sprintf("QoS@%.0f", o.InstrPerEpoch) }

// Choose implements Objective.
func (o QoSTarget) Choose(states []clock.Freq, predI, predE []float64) int {
	best := -1
	for k := range states {
		if predI[k] < o.InstrPerEpoch {
			continue
		}
		if best < 0 || predE[k] < predE[best] {
			best = k
		}
	}
	if best >= 0 {
		return best
	}
	// Infeasible epoch: run as fast as predicted work allows.
	best = 0
	for k := range states {
		if predI[k] > predI[best] {
			best = k
		}
	}
	return best
}
