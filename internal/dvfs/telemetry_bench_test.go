package dvfs_test

import (
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/core"
	"pcstall/internal/dvfs"
	"pcstall/internal/power"
	"pcstall/internal/sim"
	"pcstall/internal/telemetry"
	"pcstall/internal/workload"
)

// benchRun executes one comd/PCSTALL run — the telemetry-overhead probe
// workload shared by BENCH_telemetry.json's before/after entries.
func benchRun(b *testing.B, cfg dvfs.RunConfig) {
	b.Helper()
	simCfg := sim.DefaultConfig(4)
	gen := workload.DefaultGenConfig(4)
	gen.Scale = 0.25
	app := workload.MustBuild("comd", gen)
	d, err := core.DesignByName("PCSTALL")
	if err != nil {
		b.Fatal(err)
	}
	pm := power.DefaultModelFor(4)
	cfg.Epoch = clock.Microsecond
	cfg.Obj = dvfs.ED2P
	cfg.PM = &pm
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := sim.New(simCfg, app.Kernels, app.Launches)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dvfs.Run(g, d.New(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunTelemetryOff measures the instrumented runner with no
// registry attached — the path that must stay within 2% of the
// pre-telemetry baseline.
func BenchmarkRunTelemetryOff(b *testing.B) {
	benchRun(b, dvfs.RunConfig{})
}

// BenchmarkRunTelemetryOn measures the same run with a live registry
// (the per-epoch fold plus run-end accounting).
func BenchmarkRunTelemetryOn(b *testing.B) {
	benchRun(b, dvfs.RunConfig{Metrics: telemetry.New()})
}
