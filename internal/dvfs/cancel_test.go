package dvfs_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/core"
	"pcstall/internal/dvfs"
	"pcstall/internal/power"
	"pcstall/internal/sim"
	"pcstall/internal/trace"
	"pcstall/internal/workload"
)

func cancelRunSetup(t *testing.T) (*sim.GPU, dvfs.Policy, dvfs.RunConfig) {
	t.Helper()
	const cus = 4
	cfg := sim.DefaultConfig(cus)
	gen := workload.DefaultGenConfig(cus)
	gen.Scale = 0.5
	app := workload.MustBuild("comd", gen)
	g, err := sim.New(cfg, app.Kernels, app.Launches)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.DesignByName("PCSTALL")
	if err != nil {
		t.Fatal(err)
	}
	pm := power.DefaultModelFor(cus)
	return g, d.New(), dvfs.RunConfig{Epoch: clock.Microsecond, Obj: dvfs.ED2P, PM: &pm}
}

// cancelAtEpoch is a trace recorder that cancels a context when the
// epoch with the given index completes, making mid-run cancellation
// deterministic (the runner checks the context at the next loop top).
type cancelAtEpoch struct {
	index  int
	cancel context.CancelFunc
}

func (c *cancelAtEpoch) Epoch(e trace.EpochEvent) error {
	if e.Index == c.index {
		c.cancel()
	}
	return nil
}

func TestRunCancelledMidRun(t *testing.T) {
	g, pol, cfg := cancelRunSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Ctx = ctx
	cfg.Trace = &cancelAtEpoch{index: 2, cancel: cancel}

	res, err := dvfs.Run(g, pol, cfg)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	if !strings.Contains(err.Error(), "cancelled after 3 epochs") {
		t.Fatalf("epoch count lost from error: %v", err)
	}
	// The partial result is still returned so callers can report progress.
	if res.Epochs != 3 || !res.Truncated {
		t.Fatalf("partial result wrong: epochs=%d truncated=%v", res.Epochs, res.Truncated)
	}
}

func TestRunJobCancelledBeforeStart(t *testing.T) {
	g, pol, cfg := cancelRunSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Ctx = ctx

	built := false
	_, err := dvfs.RunJob(func() (*sim.GPU, error) {
		built = true
		return g, nil
	}, func() dvfs.Policy { return pol }, cfg)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !strings.Contains(err.Error(), "cancelled before start") {
		t.Fatalf("pre-start cancellation not labelled: %v", err)
	}
	// A cancelled job must not pay for GPU construction.
	if built {
		t.Fatal("GPU built despite pre-start cancellation")
	}
}

// TestRunNilContextCompletes pins the zero-cost default: RunConfig.Ctx
// left nil behaves exactly as before the field existed.
func TestRunNilContextCompletes(t *testing.T) {
	g, pol, cfg := cancelRunSetup(t)
	res, err := dvfs.Run(g, pol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated || res.Epochs == 0 {
		t.Fatalf("run did not complete: epochs=%d truncated=%v", res.Epochs, res.Truncated)
	}
}
