package dvfs_test

import (
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/core"
	"pcstall/internal/dvfs"
	"pcstall/internal/estimate"
	"pcstall/internal/power"
	"pcstall/internal/sim"
	"pcstall/internal/workload"
)

func freshGPU(t *testing.T, app string, cus int) *sim.GPU {
	t.Helper()
	cfg := sim.DefaultConfig(cus)
	gen := workload.DefaultGenConfig(cus)
	gen.Scale = 0.25
	a := workload.MustBuild(app, gen)
	g, err := sim.New(cfg, a.Kernels, a.Launches)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunConfigValidation(t *testing.T) {
	pm := power.DefaultModelFor(2)
	g := freshGPU(t, "comd", 2)
	if _, err := dvfs.Run(g, &dvfs.Static{F: 1700}, dvfs.RunConfig{Obj: dvfs.ED2P, PM: &pm}); err == nil {
		t.Error("zero epoch accepted")
	}
	if _, err := dvfs.Run(g, &dvfs.Static{F: 1700}, dvfs.RunConfig{Epoch: clock.Microsecond}); err == nil {
		t.Error("missing objective/power model accepted")
	}
}

func TestTruncationFlag(t *testing.T) {
	pm := power.DefaultModelFor(2)
	g := freshGPU(t, "comd", 2)
	res, err := dvfs.Run(g, &dvfs.Static{F: 1700}, dvfs.RunConfig{
		Epoch: clock.Microsecond, Obj: dvfs.ED2P, PM: &pm,
		MaxTime: 3 * clock.Microsecond, // far too short for the app
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("time-capped run not marked truncated")
	}
	if res.Epochs != 3 {
		t.Fatalf("%d epochs before a 3us cap", res.Epochs)
	}
}

func TestRecordMode(t *testing.T) {
	pm := power.DefaultModelFor(2)
	g := freshGPU(t, "xsbench", 2)
	res, err := dvfs.Run(g, &dvfs.Reactive{Model: estimate.Crisp{}}, dvfs.RunConfig{
		Epoch: clock.Microsecond, Obj: dvfs.ED2P, PM: &pm, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != res.Epochs {
		t.Fatalf("%d records for %d epochs", len(res.Records), res.Epochs)
	}
	var actual float64
	for _, r := range res.Records {
		if r.End <= r.Start {
			t.Fatal("non-positive epoch duration in record")
		}
		for d := range r.ActualI {
			actual += r.ActualI[d]
		}
	}
	if int64(actual) != res.Totals.Committed {
		t.Fatalf("record actuals %d != committed %d", int64(actual), res.Totals.Committed)
	}
}

func TestTransitionsOnlyOnFrequencyChange(t *testing.T) {
	pm := power.DefaultModelFor(2)
	g := freshGPU(t, "comd", 2)
	res, err := dvfs.Run(g, &dvfs.Static{F: 1700}, dvfs.RunConfig{
		Epoch: clock.Microsecond, Obj: dvfs.ED2P, PM: &pm,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Boot frequency is 1.7 GHz = the static choice: zero transitions.
	if res.Transitions != 0 {
		t.Fatalf("static-at-boot-frequency run made %d transitions", res.Transitions)
	}
}

func TestOracleSampleCountPlumbed(t *testing.T) {
	pm := power.DefaultModelFor(2)
	d, err := core.DesignByName("ORACLE")
	if err != nil {
		t.Fatal(err)
	}
	// A 2-sample oracle must still run to completion and stay plausible.
	g := freshGPU(t, "comd", 2)
	res, err := dvfs.Run(g, d.New(), dvfs.RunConfig{
		Epoch: clock.Microsecond, Obj: dvfs.ED2P, PM: &pm, OracleSamples: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated || res.AccuracyN == 0 {
		t.Fatalf("reduced-sample oracle run degenerate: %+v", res)
	}
}

func TestEnergyPositiveAndDecomposed(t *testing.T) {
	pm := power.DefaultModelFor(2)
	g := freshGPU(t, "comd", 2)
	res, err := dvfs.Run(g, &dvfs.Static{F: 1700}, dvfs.RunConfig{
		Epoch: clock.Microsecond, Obj: dvfs.ED2P, PM: &pm,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Total energy must at least include the uncore floor for the run's
	// duration.
	floor := pm.UncoreEnergyJ(clock.Time(res.Totals.TimeS * 1e12))
	if res.Totals.EnergyJ <= floor {
		t.Fatalf("energy %g below uncore floor %g", res.Totals.EnergyJ, floor)
	}
}

func TestPolicyNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range core.Designs() {
		p := d.New()
		if seen[p.Name()] {
			t.Fatalf("duplicate policy name %s", p.Name())
		}
		seen[p.Name()] = true
		// Reset must be callable on a fresh policy.
		p.Reset()
	}
}
