package dvfs_test

import (
	"reflect"
	"testing"

	"pcstall/internal/chaos"
	"pcstall/internal/clock"
	"pcstall/internal/core"
	"pcstall/internal/dvfs"
	"pcstall/internal/power"
	"pcstall/internal/sim"
	"pcstall/internal/workload"
)

// TestEventLoopMatchesLegacyFigures is the end-to-end half of the
// differential gate for the event-driven RunUntil rewrite: a full DVFS
// campaign — policy decisions, chaos fault injection, per-epoch records,
// energy/runtime figures — must be byte-identical whether the GPU under
// it runs the legacy per-cycle loop or the cycle-skipping event loop.
func TestEventLoopMatchesLegacyFigures(t *testing.T) {
	run := func(app string, legacy, withChaos bool) dvfs.Result {
		t.Helper()
		cfg := sim.DefaultConfig(2)
		cfg.LegacyTick = legacy
		gen := workload.DefaultGenConfig(2)
		gen.Scale = 0.3
		a := workload.MustBuild(app, gen)
		g, err := sim.New(cfg, a.Kernels, a.Launches)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.DesignByName("PCSTALL")
		if err != nil {
			t.Fatal(err)
		}
		pm := power.DefaultModelFor(2)
		rc := dvfs.RunConfig{Epoch: clock.Microsecond, Obj: dvfs.EDP, PM: &pm, Record: true}
		if withChaos {
			rc.Chaos = chaos.Level(0.2, 7)
		}
		res, err := dvfs.Run(g, d.New(), rc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, app := range []string{"comd", "xsbench"} {
		for _, withChaos := range []bool{false, true} {
			ev := run(app, false, withChaos)
			lg := run(app, true, withChaos)
			if !reflect.DeepEqual(ev, lg) {
				t.Fatalf("%s (chaos=%v): event-driven campaign diverges from legacy:\nevent:  %+v\nlegacy: %+v",
					app, withChaos, ev, lg)
			}
		}
	}
}
