package dvfs

import (
	"pcstall/internal/estimate"
	"pcstall/internal/sim"
	"pcstall/internal/xrand"
)

// Extension designs beyond the paper's TABLE III, implementing the two
// alternative predictor families its related-work section surveys
// (§2.4): global phase-history tables (Isci et al.) and Q-learning V/f
// selection (Bai et al.). They answer the natural reviewer question "is
// the PC really the right key?" — history tables key on *recent phase
// patterns*, Q-learning keys on *coarse state features*; PCSTALL keys on
// *where the code is about to execute*.

// History is a global phase-history-table predictor: each domain's
// per-epoch sensitivity is quantized into a small number of phase
// levels; a table keyed by the last HistLen levels predicts the next
// epoch's curve. Misses fall back to last-value (reactive) behaviour.
type History struct {
	// Model estimates the elapsed epoch (measurement front-end).
	Model estimate.CUModel
	// Levels is the number of quantization buckets for sensitivity.
	Levels int
	// HistLen is the pattern length (number of past epochs in the key).
	HistLen int
	// Alpha is the EWMA weight for repeated patterns.
	Alpha float64

	table   map[uint64][]float64
	hist    []uint64 // per domain: packed recent levels
	last    [][]float64
	maxSens []float64 // per domain running scale for quantization
	buf     []float64
}

// NewHistory returns the default-configured history predictor.
func NewHistory() *History {
	return &History{Model: estimate.Crisp{}, Levels: 8, HistLen: 4, Alpha: 0.5}
}

// Name implements Policy.
func (p *History) Name() string { return "HIST" }

// Truth implements Policy.
func (p *History) Truth() TruthNeed { return NoTruth }

// Predicts implements Policy.
func (p *History) Predicts() bool { return true }

// Reset implements Policy.
func (p *History) Reset() {
	p.table = nil
	p.hist = nil
	p.last = nil
	p.maxSens = nil
}

func (p *History) init(nd, k int) {
	if p.table != nil {
		return
	}
	p.table = make(map[uint64][]float64)
	p.hist = make([]uint64, nd)
	p.last = make([][]float64, nd)
	p.maxSens = make([]float64, nd)
	for d := range p.last {
		p.last[d] = make([]float64, k)
	}
	if cap(p.buf) < k {
		p.buf = make([]float64, k)
	}
}

// quantize maps a measured curve's slope onto a phase level.
func (p *History) quantize(d int, curve []float64) uint64 {
	slope := curve[len(curve)-1] - curve[0]
	if slope < 0 {
		slope = 0
	}
	if slope > p.maxSens[d] {
		p.maxSens[d] = slope
	}
	if p.maxSens[d] == 0 {
		return 0
	}
	lv := int(slope / p.maxSens[d] * float64(p.Levels))
	if lv >= p.Levels {
		lv = p.Levels - 1
	}
	return uint64(lv)
}

func (p *History) key(d int) uint64 {
	// Domain-tagged pattern so domains don't pollute each other while
	// still sharing one physical table.
	return p.hist[d]<<8 | uint64(d&0xff)
}

// Decide implements Policy.
func (p *History) Decide(ctx *Context, elapsed *sim.EpochSample, obj Objective, pred [][]float64, choice []int) {
	k := ctx.Grid.Count()
	nd := len(pred)
	p.init(nd, k)
	mask := uint64(1)<<(uint(p.HistLen)*8) - 1

	for d := 0; d < nd; d++ {
		if elapsed != nil {
			// Measure the elapsed epoch and update the entry keyed by
			// the pattern that *preceded* it.
			dur := int64(elapsed.End - elapsed.Start)
			lo, hi := ctx.DMap.CUs(d)
			measured := p.buf[:k]
			for s := range measured {
				measured[s] = 0
			}
			cuCurve := make([]float64, k)
			for cu := lo; cu < hi; cu++ {
				estimate.PredictCU(p.Model, &elapsed.CUs[cu], dur, elapsed.Freqs[d], ctx.Grid, cuCurve)
				for s := range cuCurve {
					measured[s] += cuCurve[s]
				}
			}
			prevKey := p.key(d)
			if e, ok := p.table[prevKey]; ok {
				for s := range e {
					e[s] = p.Alpha*measured[s] + (1-p.Alpha)*e[s]
				}
			} else {
				p.table[prevKey] = append([]float64(nil), measured...)
			}
			copy(p.last[d], measured)
			// Advance the phase history with the measured level.
			p.hist[d] = (p.hist[d]<<8 | p.quantize(d, measured)) & mask
		}

		// Predict the next epoch from the current pattern.
		if e, ok := p.table[p.key(d)]; ok {
			copy(pred[d], e)
		} else {
			copy(pred[d], p.last[d])
		}
	}
	chooseAll(ctx, obj, pred, choice)
}

// QLearn is a tabular Q-learning governor: the state is the quantized
// (activity, memory-intensity) of the elapsed epoch, actions are V/f
// states, and the reward is the negative per-epoch objective score. It
// selects frequencies directly — prediction and selection fused — which
// is why its "prediction accuracy" is not comparable (Predicts reports
// false) and only its energy results are.
type QLearn struct {
	// Buckets quantizes each state feature.
	Buckets int
	// LearnRate and Discount are the Q-learning parameters.
	LearnRate float64
	Discount  float64
	// Epsilon is the exploration rate.
	Epsilon float64
	// Seed drives exploration.
	Seed uint64

	q     [][]float64 // [state][action]
	rng   xrand.State
	prevS []int
	prevA []int
}

// NewQLearn returns a default-configured Q-learning governor.
func NewQLearn() *QLearn {
	return &QLearn{Buckets: 4, LearnRate: 0.3, Discount: 0.5, Epsilon: 0.1, Seed: 99}
}

// Name implements Policy.
func (p *QLearn) Name() string { return "QLEARN" }

// Truth implements Policy.
func (p *QLearn) Truth() TruthNeed { return NoTruth }

// Predicts implements Policy.
func (p *QLearn) Predicts() bool { return false }

// Reset implements Policy.
func (p *QLearn) Reset() { p.q = nil }

func (p *QLearn) init(nd, k int) {
	if p.q != nil {
		return
	}
	states := p.Buckets * p.Buckets
	p.q = make([][]float64, states)
	for i := range p.q {
		p.q[i] = make([]float64, k)
	}
	p.rng = xrand.New(p.Seed)
	p.prevS = make([]int, nd)
	p.prevA = make([]int, nd)
	for d := range p.prevS {
		p.prevS[d] = -1
	}
}

// observe quantizes a domain's elapsed epoch into a table state.
func (p *QLearn) observe(ctx *Context, elapsed *sim.EpochSample, d int) (state int, reward float64) {
	dur := elapsed.End - elapsed.Start
	if dur <= 0 {
		return 0, 0
	}
	lo, hi := ctx.DMap.CUs(d)
	var committed, issue, memOps int64
	for cu := lo; cu < hi; cu++ {
		committed += elapsed.CUs[cu].C.Committed
		issue += elapsed.CUs[cu].C.IssueSlots
		memOps += elapsed.CUs[cu].C.MemCommitted
	}
	f := elapsed.Freqs[d]
	cycles := float64(dur) * float64(f) / 1e6
	act := float64(issue) / (cycles * float64(ctx.G.Cfg.SIMDsPerCU*ctx.DMap.CUsPerDomain))
	memFrac := 0.0
	if committed > 0 {
		memFrac = float64(memOps) / float64(committed)
	}
	b := func(x float64) int {
		i := int(x * float64(p.Buckets))
		if i >= p.Buckets {
			i = p.Buckets - 1
		}
		if i < 0 {
			i = 0
		}
		return i
	}
	state = b(act)*p.Buckets + b(memFrac)

	// Reward: negative per-epoch ED²P-style score of what actually
	// happened (energy over work³, scaled to a stable magnitude).
	e := ctx.PredictE(d, f, float64(committed))
	i := float64(committed)
	if i < 1 {
		i = 1
	}
	reward = -e * 1e18 / (i * i * i)
	return state, reward
}

// Decide implements Policy.
func (p *QLearn) Decide(ctx *Context, elapsed *sim.EpochSample, _ Objective, pred [][]float64, choice []int) {
	k := ctx.Grid.Count()
	nd := len(pred)
	p.init(nd, k)

	for d := 0; d < nd; d++ {
		for s := range pred[d] {
			pred[d][s] = 0
		}
		state := 0
		if elapsed != nil {
			var reward float64
			state, reward = p.observe(ctx, elapsed, d)
			if p.prevS[d] >= 0 {
				// Q(s,a) += lr * (r + gamma*max Q(s',·) - Q(s,a))
				best := p.q[state][0]
				for _, v := range p.q[state] {
					if v > best {
						best = v
					}
				}
				cell := &p.q[p.prevS[d]][p.prevA[d]]
				*cell += p.LearnRate * (reward + p.Discount*best - *cell)
			}
		}
		a := 0
		if p.rng.Float64() < p.Epsilon {
			a = p.rng.Intn(k)
		} else {
			for s := 1; s < k; s++ {
				if p.q[state][s] > p.q[state][a] {
					a = s
				}
			}
		}
		p.prevS[d] = state
		p.prevA[d] = a
		choice[d] = a
	}
}

var (
	_ Policy = (*History)(nil)
	_ Policy = (*QLearn)(nil)
)
