package dvfs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/core"
	"pcstall/internal/dvfs"
	"pcstall/internal/power"
	"pcstall/internal/sim"
	"pcstall/internal/tracing"
	"pcstall/internal/workload"
)

// tracedRun executes one small run with ctx (which may carry a tracer)
// attached. Mirrors goldenRun but exercises the RunConfig.Ctx path the
// tracing layer rides.
func tracedRun(t *testing.T, design string, ctx context.Context) dvfs.Result {
	t.Helper()
	simCfg := sim.DefaultConfig(4)
	gen := workload.DefaultGenConfig(4)
	gen.Scale = 0.25
	app := workload.MustBuild("comd", gen)
	d, err := core.DesignByName(design)
	if err != nil {
		t.Fatal(err)
	}
	pm := power.DefaultModelFor(4)
	g, err := sim.New(simCfg, app.Kernels, app.Launches)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dvfs.Run(g, d.New(), dvfs.RunConfig{
		Epoch:  clock.Microsecond,
		Obj:    dvfs.ED2P,
		PM:     &pm,
		Record: true,
		Ctx:    ctx,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTracingGolden is the tracing determinism contract: a run under an
// active tracer must produce a byte-identical result to the same run
// with tracing disabled. Tracing observes the simulation; it never
// feeds back.
func TestTracingGolden(t *testing.T) {
	for _, design := range []string{"PCSTALL", "ORACLE", "ACCREAC"} {
		base := tracedRun(t, design, nil)
		tr := tracing.New("test", 8)
		ctx := tracing.WithTracer(context.Background(), tr)
		traced := tracedRun(t, design, ctx)
		bj, err := json.Marshal(base)
		if err != nil {
			t.Fatal(err)
		}
		tj, err := json.Marshal(traced)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bj, tj) {
			t.Fatalf("%s: tracing perturbed the run:\nbase   %s\ntraced %s", design, bj, tj)
		}
	}
}

// TestTracingRecordsRun checks an instrumented run lands a dvfs.run
// span with final counts in the flight recorder.
func TestTracingRecordsRun(t *testing.T) {
	tr := tracing.New("test", 8)
	ctx := tracing.WithTracer(context.Background(), tr)
	res := tracedRun(t, "PCSTALL", ctx)

	traces := tr.Recorder().Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	root := traces[0].Root()
	if root == nil || root.Name != "dvfs.run" {
		t.Fatalf("trace root = %+v, want dvfs.run span", root)
	}
	attrs := map[string]string{}
	for _, a := range root.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["policy"] != res.Policy || attrs["objective"] != res.Objective {
		t.Fatalf("span attrs %v do not match result %s/%s", attrs, res.Policy, res.Objective)
	}
	if attrs["epochs"] == "" || attrs["epochs"] == "0" {
		t.Fatalf("span missing epoch count: %v", attrs)
	}
}
