package dvfs

import (
	"math"
	"sort"

	"pcstall/internal/chaos"
	"pcstall/internal/clock"
	"pcstall/internal/estimate"
	"pcstall/internal/oracle"
	"pcstall/internal/predict"
	"pcstall/internal/sim"
	"pcstall/internal/telemetry"
)

// Context is everything a policy may consult at an epoch boundary.
type Context struct {
	G     *sim.GPU
	Grid  clock.Grid
	DMap  clock.Map
	Epoch clock.Time
	// PrevTruth is the fork-pre-execute ground truth for the epoch that
	// just ran; NextTruth for the epoch about to run. Both are nil
	// unless the policy's TruthNeed requests sampling.
	PrevTruth, NextTruth *oracle.Truth
	// PredictE estimates domain d's next-epoch energy at frequency f
	// when committing predI instructions; the runner backs it with the
	// power model.
	PredictE func(d int, f clock.Freq, predI float64) float64
	// OccPerInstr[d] is domain d's measured SIMD occupancy per committed
	// instruction, in cycles (from the elapsed epoch); it bounds how
	// many instructions a predicted curve may promise.
	OccPerInstr []float64
	// ObjEvals, when non-nil, counts objective Choose evaluations (one
	// per domain decision); the runner wires it from RunConfig.Metrics.
	ObjEvals *telemetry.Counter
	// Sanitized, when non-nil, counts non-finite predictions floored by
	// chooseAll's sanity clamp.
	Sanitized *telemetry.Counter
	// Chaos, when non-nil, is the run's fault injector. Policies must
	// read PC signatures through Context.ActivePCs (not G.ActivePCs) so
	// signature corruption applies uniformly.
	Chaos *chaos.Engine
}

// ActivePCs returns the PC signatures of domain d's resident wavefronts
// as the policy should observe them: the simulator's true PCs, passed
// through the fault injector when one is active.
func (c *Context) ActivePCs(d int, buf []sim.WavePC) []sim.WavePC {
	buf = c.G.ActivePCs(d, buf)
	return c.Chaos.CorruptPCs(buf)
}

// TruthNeed states whether a policy consumes oracle sampling.
type TruthNeed uint8

const (
	// NoTruth: a practical policy using only hardware counters.
	NoTruth TruthNeed = iota
	// DomainTruth: needs per-domain sampled curves (ACCREAC, ORACLE).
	DomainTruth
	// WFTruth: needs per-wavefront sampled curves too (ACCPC).
	WFTruth
)

// Policy predicts next-epoch behaviour per domain. Decide fills
// pred[d][k] (predicted instructions for domain d at state k) and returns
// per-domain chosen state indices; the runner applies the choice,
// executes the epoch, and scores pred against reality.
type Policy interface {
	Name() string
	Truth() TruthNeed
	// Predicts reports whether pred is meaningful (static policies
	// return false and are excluded from accuracy averages).
	Predicts() bool
	Decide(ctx *Context, elapsed *sim.EpochSample, obj Objective, pred [][]float64, choice []int)
	// Reset clears learned state between runs.
	Reset()
}

// chooseAll caps predictions at the domain's physical issue bandwidth and
// applies the objective per domain.
//
// The cap matters because linear sensitivity extrapolation can promise
// more instructions at high frequency than the SIMDs can issue (e.g. a
// barrier-synced compute phase whose waves each scale individually but
// share issue slots); uncapped curves systematically over-buy frequency.
func chooseAll(ctx *Context, obj Objective, pred [][]float64, choice []int) {
	states := ctx.Grid.States()
	k := ctx.Grid.Count()
	predE := make([]float64, k)
	cus := ctx.DMap.CUsPerDomain
	simds := ctx.G.Cfg.SIMDsPerCU
	for d := range choice {
		occ := 2.0
		if d < len(ctx.OccPerInstr) && ctx.OccPerInstr[d] > 1 {
			occ = ctx.OccPerInstr[d]
		}
		for s := 0; s < k; s++ {
			cycles := float64(ctx.Epoch) * float64(states[s]) / 1e6
			cap := cycles * float64(simds*cus) / occ
			// NaN compares false against cap, so a poisoned prediction
			// (possible under injected telemetry faults) would sail
			// through the bandwidth clamp and then corrupt the
			// objective's scoring; floor non-finite and negative values.
			if v := pred[d][s]; math.IsNaN(v) || math.IsInf(v, 0) {
				pred[d][s] = 0
				ctx.Sanitized.Inc()
			} else if v < 0 {
				pred[d][s] = 0
			}
			if pred[d][s] > cap {
				pred[d][s] = cap
			}
			predE[s] = ctx.PredictE(d, states[s], pred[d][s])
		}
		choice[d] = obj.Choose(states, pred[d], predE)
		ctx.ObjEvals.Inc()
	}
}

// ---------------------------------------------------------------------------
// Static

// Static runs every domain at a fixed frequency (the paper's baselines at
// 1.3, 1.7, and 2.2 GHz).
type Static struct {
	F clock.Freq
}

// Name implements Policy.
func (p *Static) Name() string { return "STATIC-" + p.F.String() }

// Truth implements Policy.
func (p *Static) Truth() TruthNeed { return NoTruth }

// Predicts implements Policy.
func (p *Static) Predicts() bool { return false }

// Reset implements Policy.
func (p *Static) Reset() {}

// Decide implements Policy.
func (p *Static) Decide(ctx *Context, _ *sim.EpochSample, _ Objective, pred [][]float64, choice []int) {
	k := ctx.Grid.Index(p.F)
	for d := range choice {
		choice[d] = k
	}
}

// ---------------------------------------------------------------------------
// Reactive with a CU-level estimation model (STALL, LEAD, CRIT, CRISP)

// Reactive is the classical last-value predictor: estimate the elapsed
// epoch with a CU-level model and assume the next epoch behaves the same
// (TABLE III's reactive designs).
type Reactive struct {
	Model estimate.CUModel
	buf   []float64
}

// Name implements Policy.
func (p *Reactive) Name() string { return p.Model.Name() }

// Truth implements Policy.
func (p *Reactive) Truth() TruthNeed { return NoTruth }

// Predicts implements Policy.
func (p *Reactive) Predicts() bool { return true }

// Reset implements Policy.
func (p *Reactive) Reset() {}

// Decide implements Policy.
func (p *Reactive) Decide(ctx *Context, elapsed *sim.EpochSample, obj Objective, pred [][]float64, choice []int) {
	k := ctx.Grid.Count()
	if cap(p.buf) < k {
		p.buf = make([]float64, k)
	}
	cuCurve := p.buf[:k]
	for d := range pred {
		for s := range pred[d] {
			pred[d][s] = 0
		}
		if elapsed == nil {
			continue
		}
		dur := int64(elapsed.End - elapsed.Start)
		lo, hi := ctx.DMap.CUs(d)
		for cu := lo; cu < hi; cu++ {
			estimate.PredictCU(p.Model, &elapsed.CUs[cu], dur, elapsed.Freqs[d], ctx.Grid, cuCurve)
			for s := range cuCurve {
				pred[d][s] += cuCurve[s]
			}
		}
	}
	chooseAll(ctx, obj, pred, choice)
}

// ---------------------------------------------------------------------------
// PCSTALL: wavefront-level STALL estimation + PC-indexed prediction

// TableScope selects how PC tables are shared (§4.4 — accuracy is largely
// insensitive to sharing, Fig. 10's granularity study).
type TableScope uint8

const (
	// TablePerCU instantiates one table per CU (the default).
	TablePerCU TableScope = iota
	// TablePerDomain shares one table across each V/f domain.
	TablePerDomain
	// TableGlobal shares a single table GPU-wide.
	TableGlobal
)

// PCStall is the paper's mechanism: each wavefront's elapsed-epoch
// sensitivity (wavefront-level STALL estimate) is stored in a PC-indexed
// table keyed by the epoch's starting PC; at the next boundary every
// resident wavefront looks up its upcoming PC and the per-wavefront
// predictions are summed into the domain prediction (§4.4, Fig. 12).
type PCStall struct {
	Cfg   predict.PCTableConfig
	WFCfg estimate.WFStallConfig
	Scope TableScope
	// Fallback uses the wavefront's own elapsed-epoch estimate on a
	// table miss (a reactive fallback); without it misses predict zero.
	Fallback bool

	tables []*predict.PCTable
	pcBuf  []sim.WavePC
}

// NewPCStall returns the paper-default configuration (per-CU 128-entry
// tables, 4 offset bits, reactive fallback).
func NewPCStall() *PCStall {
	return &PCStall{
		Cfg:      predict.DefaultPCTable(),
		WFCfg:    estimate.DefaultWFStall(),
		Scope:    TablePerCU,
		Fallback: true,
	}
}

// Name implements Policy.
func (p *PCStall) Name() string { return "PCSTALL" }

// Truth implements Policy.
func (p *PCStall) Truth() TruthNeed { return NoTruth }

// Predicts implements Policy.
func (p *PCStall) Predicts() bool { return true }

// Reset implements Policy.
func (p *PCStall) Reset() { p.tables = nil }

func (p *PCStall) table(ctx *Context, cu int) *predict.PCTable {
	var n, idx int
	switch p.Scope {
	case TablePerCU:
		n, idx = ctx.DMap.NumCUs, cu
	case TablePerDomain:
		n, idx = ctx.DMap.NumDomains(), ctx.DMap.DomainOf(cu)
	default:
		n, idx = 1, 0
	}
	if p.tables == nil {
		p.tables = make([]*predict.PCTable, n)
		for i := range p.tables {
			p.tables[i] = predict.NewPCTable(p.Cfg)
		}
	}
	return p.tables[idx]
}

// Tables exposes the policy's PC-table instances for telemetry.
func (p *PCStall) Tables() []*predict.PCTable { return p.tables }

// HitRatio returns the average hit ratio across table instances.
func (p *PCStall) HitRatio() float64 {
	if len(p.tables) == 0 {
		return 0
	}
	var hits, lookups float64
	for _, t := range p.tables {
		lookups += float64(t.Lookups())
		hits += float64(t.Lookups()) * t.HitRatio()
	}
	if lookups == 0 {
		return 0
	}
	return hits / lookups
}

// Decide implements Policy.
func (p *PCStall) Decide(ctx *Context, elapsed *sim.EpochSample, obj Objective, pred [][]float64, choice []int) {
	grid := ctx.Grid
	fRef := grid.Mid()
	// Update: store each wavefront's elapsed-epoch estimate under its
	// starting PC, and remember the latest estimate per (cu, slot) as
	// the miss fallback.
	type slotEst struct {
		est   estimate.WFEstimate
		valid bool
	}
	fallback := make(map[[2]int32]slotEst)
	if elapsed != nil {
		dur := int64(elapsed.End - elapsed.Start)
		for cu := range elapsed.CUs {
			ce := &elapsed.CUs[cu]
			tbl := p.table(ctx, cu)
			n := len(ce.WFs)
			d := ctx.DMap.DomainOf(cu)
			bf := estimate.BarrierStallFrac(ce.WFs)
			for i := range ce.WFs {
				rec := &ce.WFs[i]
				e := p.WFCfg.EstimateWF(rec, dur, elapsed.Freqs[d], grid, n, bf)
				// A wave blocked for its entire epoch carries no phase
				// information; storing its zero would poison the entry
				// for waves that start here and then make progress.
				if rec.C.Committed > 0 || rec.Done {
					tbl.Update(rec.StartPC, e)
				}
				if !rec.Done {
					fallback[[2]int32{int32(cu), rec.Slot}] = slotEst{est: e, valid: true}
				}
			}
		}
	}

	// Lookup: each resident wavefront indexes its table with its next
	// PC; per-wavefront predictions sum into the domain curve.
	for d := range pred {
		for s := range pred[d] {
			pred[d][s] = 0
		}
		p.pcBuf = ctx.ActivePCs(d, p.pcBuf[:0])
		for _, wp := range p.pcBuf {
			tbl := p.table(ctx, int(wp.CU))
			e, ok := tbl.Lookup(wp.PC)
			if !ok {
				if !p.Fallback {
					continue
				}
				fe, has := fallback[[2]int32{wp.CU, wp.Slot}]
				if !has {
					continue
				}
				e = fe.est
			}
			for s := range pred[d] {
				pred[d][s] += e.Eval(grid.State(s), fRef)
			}
		}
	}
	chooseAll(ctx, obj, pred, choice)
}

// ---------------------------------------------------------------------------
// Accurate-estimate designs (fork-pre-execute fed)

// AccReactive is ACCREAC: a last-value predictor fed perfectly accurate
// estimates of the elapsed epoch (from fork-pre-execute sampling). It
// isolates the prediction error: even with perfect estimation, reacting
// is wrong whenever consecutive epochs differ (§6.1).
type AccReactive struct{}

// Name implements Policy.
func (p *AccReactive) Name() string { return "ACCREAC" }

// Truth implements Policy.
func (p *AccReactive) Truth() TruthNeed { return DomainTruth }

// Predicts implements Policy.
func (p *AccReactive) Predicts() bool { return true }

// Reset implements Policy.
func (p *AccReactive) Reset() {}

// Decide implements Policy.
func (p *AccReactive) Decide(ctx *Context, elapsed *sim.EpochSample, obj Objective, pred [][]float64, choice []int) {
	for d := range pred {
		for s := range pred[d] {
			if ctx.PrevTruth != nil {
				pred[d][s] = ctx.PrevTruth.I[d][s]
			} else {
				pred[d][s] = 0
			}
		}
	}
	chooseAll(ctx, obj, pred, choice)
}

// AccPC is ACCPC: the PC-based predictor fed perfectly accurate
// per-wavefront sensitivities — the upper bound of the PC mechanism.
type AccPC struct {
	Cfg   predict.PCTableConfig
	Scope TableScope

	tables []*predict.PCTable
	pcBuf  []sim.WavePC
}

// NewAccPC returns the default-configured ACCPC design.
func NewAccPC() *AccPC {
	return &AccPC{Cfg: predict.DefaultPCTable(), Scope: TablePerCU}
}

// Name implements Policy.
func (p *AccPC) Name() string { return "ACCPC" }

// Truth implements Policy.
func (p *AccPC) Truth() TruthNeed { return WFTruth }

// Predicts implements Policy.
func (p *AccPC) Predicts() bool { return true }

// Reset implements Policy.
func (p *AccPC) Reset() { p.tables = nil }

func (p *AccPC) table(ctx *Context, cu int) *predict.PCTable {
	var n, idx int
	switch p.Scope {
	case TablePerCU:
		n, idx = ctx.DMap.NumCUs, cu
	case TablePerDomain:
		n, idx = ctx.DMap.NumDomains(), ctx.DMap.DomainOf(cu)
	default:
		n, idx = 1, 0
	}
	if p.tables == nil {
		p.tables = make([]*predict.PCTable, n)
		for i := range p.tables {
			p.tables[i] = predict.NewPCTable(p.Cfg)
		}
	}
	return p.tables[idx]
}

// Tables exposes the policy's PC-table instances for telemetry.
func (p *AccPC) Tables() []*predict.PCTable { return p.tables }

// Decide implements Policy.
func (p *AccPC) Decide(ctx *Context, elapsed *sim.EpochSample, obj Objective, pred [][]float64, choice []int) {
	grid := ctx.Grid
	fRef := grid.Mid()
	if ctx.PrevTruth != nil && ctx.PrevTruth.WF != nil {
		for cu := range ctx.PrevTruth.WF {
			tbl := p.table(ctx, cu)
			// Update in ascending wave order, not map order: table
			// entries are EWMAs, so the update sequence is
			// order-sensitive when waves share an entry, and runs must
			// be deterministic (DESIGN.md §3) for caching and for the
			// serial-vs-parallel golden test.
			waves := ctx.PrevTruth.WF[cu]
			ids := make([]int64, 0, len(waves))
			for id := range waves {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			for _, id := range ids {
				tbl.Update(waves[id].StartPC, waves[id].WFEstimateTrue(grid))
			}
		}
	}
	for d := range pred {
		for s := range pred[d] {
			pred[d][s] = 0
		}
		p.pcBuf = ctx.ActivePCs(d, p.pcBuf[:0])
		for _, wp := range p.pcBuf {
			e, ok := p.table(ctx, int(wp.CU)).Lookup(wp.PC)
			if !ok {
				// Miss fallback: the wave's own accurate elapsed-epoch
				// estimate (the accurate analogue of PCSTALL's reactive
				// fallback).
				if ctx.PrevTruth == nil || ctx.PrevTruth.WF == nil {
					continue
				}
				wt := ctx.PrevTruth.WF[wp.CU][wp.GlobalWave]
				if wt == nil {
					continue
				}
				e = wt.WFEstimateTrue(grid)
			}
			for s := range pred[d] {
				pred[d][s] += e.Eval(grid.State(s), fRef)
			}
		}
	}
	chooseAll(ctx, obj, pred, choice)
}

// Oracle picks frequencies from the sampled truth of the epoch about to
// run — the near-optimal reference (ORACLE in TABLE III).
type Oracle struct{}

// Name implements Policy.
func (p *Oracle) Name() string { return "ORACLE" }

// Truth implements Policy.
func (p *Oracle) Truth() TruthNeed { return DomainTruth }

// Predicts implements Policy.
func (p *Oracle) Predicts() bool { return true }

// Reset implements Policy.
func (p *Oracle) Reset() {}

// Decide implements Policy.
func (p *Oracle) Decide(ctx *Context, _ *sim.EpochSample, obj Objective, pred [][]float64, choice []int) {
	states := ctx.Grid.States()
	for d := range pred {
		if ctx.NextTruth == nil {
			for s := range pred[d] {
				pred[d][s] = 0
			}
			choice[d] = ctx.Grid.Index(ctx.Grid.Mid())
			continue
		}
		copy(pred[d], ctx.NextTruth.I[d])
		choice[d] = obj.Choose(states, ctx.NextTruth.I[d], ctx.NextTruth.E[d])
		ctx.ObjEvals.Inc()
	}
}
