package dvfs

import (
	"math"

	"pcstall/internal/sim"
	"pcstall/internal/telemetry"
)

// GuardConfig tunes the Hardened policy's degradation machinery.
type GuardConfig struct {
	// ErrWindow is the effective window of the prediction-error EWMA
	// (alpha = 2/(ErrWindow+1)).
	ErrWindow int
	// Engage is the EWMA relative error above which the fallback policy
	// takes over; Recover is the error below which the primary resumes.
	// Engage > Recover gives the switch its own hysteresis.
	Engage  float64
	Recover float64
	// MinEpochs is how many scored epochs must elapse before the guard
	// may engage (the primary needs warm-up to populate its tables).
	MinEpochs int
	// Hold is the hysteresis guard band: after a domain changes state,
	// further changes are suppressed for Hold epochs, so noise-driven
	// decision flapping cannot pay a transition stall every epoch.
	Hold int
	// PerfMargin scales the performance watchdog's floor: under a
	// FixedPerf objective, realized work below (1-Limit)*PerfMargin of
	// the last predicted top-state work forces the domain back to the
	// top state. <=0 disables the watchdog.
	PerfMargin float64
}

// DefaultGuard returns the hardened governor's default tuning.
func DefaultGuard() GuardConfig {
	return GuardConfig{
		ErrWindow:  8,
		Engage:     0.5,
		Recover:    0.25,
		MinEpochs:  4,
		Hold:       2,
		PerfMargin: 0.8,
	}
}

// perfLimited is implemented by objectives that carry an explicit
// performance-degradation contract (FixedPerf).
type perfLimited interface {
	PerfLimit() float64
}

// Hardened wraps a primary (predicting) policy with graceful-degradation
// machinery for faulty telemetry: a confidence tracker that measures the
// primary's realized prediction error and hands control to a simpler
// fallback policy while confidence is low, a hysteresis guard band that
// stops noise-driven frequency flapping, and a performance watchdog that
// reverts a domain to the top state when a FixedPerf objective's
// contract is being violated. Both wrapped policies observe every epoch
// (the primary keeps learning while the fallback drives), and the
// confidence score is always the primary's, so control returns as soon
// as the primary's predictions become trustworthy again.
type Hardened struct {
	Primary  Policy
	Fallback Policy
	Guard    GuardConfig
	// Label overrides Name (the design registry uses "PCSTALL-HARD").
	Label string

	priPred, fbPred       [][]float64
	priChoice, fbChoice   []int
	prevExecPred          []float64
	prevTopPred           []float64
	prevChoice            []int
	lastChoice            []int
	holdLeft, revertLeft  []int
	havePrev, useFallback bool
	scored                int
	ewmaErr               float64

	nEngagements, nFallbackEpochs int64
	nHolds, nReverts              int64

	cEngagements, cFallbackEpochs *telemetry.Counter
	cHolds, cReverts              *telemetry.Counter
}

// NewHardened wraps primary with fallback under the default guard.
func NewHardened(primary, fallback Policy) *Hardened {
	return &Hardened{Primary: primary, Fallback: fallback, Guard: DefaultGuard()}
}

// Name implements Policy.
func (p *Hardened) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "HARD(" + p.Primary.Name() + ")"
}

// Truth implements Policy: the union of both wrapped policies' needs.
func (p *Hardened) Truth() TruthNeed {
	if t := p.Fallback.Truth(); t > p.Primary.Truth() {
		return t
	}
	return p.Primary.Truth()
}

// Predicts implements Policy.
func (p *Hardened) Predicts() bool { return true }

// Reset implements Policy.
func (p *Hardened) Reset() {
	p.Primary.Reset()
	p.Fallback.Reset()
	p.priPred, p.fbPred = nil, nil
	p.priChoice, p.fbChoice = nil, nil
	p.prevExecPred, p.prevTopPred = nil, nil
	p.prevChoice, p.lastChoice = nil, nil
	p.holdLeft, p.revertLeft = nil, nil
	p.havePrev, p.useFallback = false, false
	p.scored, p.ewmaErr = 0, 0
	p.nEngagements, p.nFallbackEpochs = 0, 0
	p.nHolds, p.nReverts = 0, 0
}

// bindTelemetry attaches the guard counters to a registry (nil is a
// no-op); the runner calls it once per run.
func (p *Hardened) bindTelemetry(r *telemetry.Registry) {
	if r == nil {
		return
	}
	p.cEngagements = r.Counter("dvfs_guard_fallback_engagements_total", "times the hardened governor handed control to its fallback policy")
	p.cFallbackEpochs = r.Counter("dvfs_guard_fallback_epochs_total", "epochs decided by the fallback policy")
	p.cHolds = r.Counter("dvfs_guard_hysteresis_holds_total", "domain decisions suppressed by the hysteresis guard band")
	p.cReverts = r.Counter("dvfs_guard_watchdog_reverts_total", "domains forced to the top state by the performance watchdog")
}

// FallbackActive reports whether the fallback currently drives.
func (p *Hardened) FallbackActive() bool { return p.useFallback }

// Engagements returns how many times the fallback took over.
func (p *Hardened) Engagements() int64 { return p.nEngagements }

// FallbackEpochs returns how many epochs the fallback decided.
func (p *Hardened) FallbackEpochs() int64 { return p.nFallbackEpochs }

// HysteresisHolds returns how many domain decisions the guard band
// suppressed.
func (p *Hardened) HysteresisHolds() int64 { return p.nHolds }

// WatchdogReverts returns how many domain-epochs the performance
// watchdog forced back to the top state.
func (p *Hardened) WatchdogReverts() int64 { return p.nReverts }

// PredictionError returns the current EWMA relative prediction error of
// the primary policy.
func (p *Hardened) PredictionError() float64 { return p.ewmaErr }

func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0
	}
	return v
}

func (p *Hardened) alloc(nd, k int) {
	if p.priPred != nil {
		return
	}
	p.priPred = make([][]float64, nd)
	p.fbPred = make([][]float64, nd)
	for d := 0; d < nd; d++ {
		p.priPred[d] = make([]float64, k)
		p.fbPred[d] = make([]float64, k)
	}
	p.priChoice = make([]int, nd)
	p.fbChoice = make([]int, nd)
	p.prevExecPred = make([]float64, nd)
	p.prevTopPred = make([]float64, nd)
	p.prevChoice = make([]int, nd)
	p.lastChoice = make([]int, nd)
	p.holdLeft = make([]int, nd)
	p.revertLeft = make([]int, nd)
}

// Decide implements Policy.
func (p *Hardened) Decide(ctx *Context, elapsed *sim.EpochSample, obj Objective, pred [][]float64, choice []int) {
	nd := len(choice)
	k := ctx.Grid.Count()
	top := k - 1
	p.alloc(nd, k)

	// 1. Score the primary's previous prediction against what really
	// committed. The score is always the primary's — even while the
	// fallback drives — so recovery is possible.
	if p.havePrev && elapsed != nil {
		var sum float64
		for d := 0; d < nd; d++ {
			actual := float64(elapsed.DomainCommitted(ctx.DMap, d))
			den := actual
			if den < 1 {
				den = 1
			}
			diff := p.prevExecPred[d] - actual
			if diff < 0 {
				diff = -diff
			}
			sum += diff / den
		}
		relErr := sum / float64(nd)
		alpha := 2.0 / (float64(p.Guard.ErrWindow) + 1)
		if p.scored == 0 {
			p.ewmaErr = relErr
		} else {
			p.ewmaErr = alpha*relErr + (1-alpha)*p.ewmaErr
		}
		p.scored++
	}

	// 2. Confidence switch with its own hysteresis band.
	if !p.useFallback && p.scored >= p.Guard.MinEpochs && p.ewmaErr > p.Guard.Engage {
		p.useFallback = true
		p.nEngagements++
		p.cEngagements.Inc()
	} else if p.useFallback && p.ewmaErr < p.Guard.Recover {
		p.useFallback = false
	}

	// 3. Step both policies every epoch into private buffers, so the
	// bench policy keeps learning and its accuracy keeps being scored.
	p.Primary.Decide(ctx, elapsed, obj, p.priPred, p.priChoice)
	p.Fallback.Decide(ctx, elapsed, obj, p.fbPred, p.fbChoice)

	activePred, activeChoice := p.priPred, p.priChoice
	if p.useFallback {
		activePred, activeChoice = p.fbPred, p.fbChoice
		p.nFallbackEpochs++
		p.cFallbackEpochs.Inc()
	}
	for d := 0; d < nd; d++ {
		for s := 0; s < k; s++ {
			v := activePred[d][s]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
				ctx.Sanitized.Inc()
			} else if v < 0 {
				v = 0
			}
			pred[d][s] = v
		}
		choice[d] = activeChoice[d]
	}

	// 4. Hysteresis guard band: a fresh move locks the domain's state
	// for Hold epochs.
	if p.Guard.Hold > 0 && p.havePrev {
		for d := 0; d < nd; d++ {
			if p.holdLeft[d] > 0 {
				p.holdLeft[d]--
				if choice[d] != p.lastChoice[d] {
					choice[d] = p.lastChoice[d]
					p.nHolds++
					p.cHolds.Inc()
				}
			} else if choice[d] != p.lastChoice[d] {
				p.holdLeft[d] = p.Guard.Hold
			}
		}
	}

	// 5. Performance watchdog: under an explicit performance contract,
	// a downclocked domain whose realized work fell beyond the allowed
	// slowdown (with margin) is forced back to the top state and pinned
	// there for Hold epochs.
	if pl, ok := obj.(perfLimited); ok && p.Guard.PerfMargin > 0 && p.havePrev && elapsed != nil {
		floor := (1 - pl.PerfLimit()) * p.Guard.PerfMargin
		for d := 0; d < nd; d++ {
			if p.revertLeft[d] > 0 {
				p.revertLeft[d]--
				choice[d] = top
				continue
			}
			if p.prevChoice[d] >= top || p.prevTopPred[d] < 1 {
				continue
			}
			actual := float64(elapsed.DomainCommitted(ctx.DMap, d))
			if actual < floor*p.prevTopPred[d] && choice[d] < top {
				choice[d] = top
				p.revertLeft[d] = p.Guard.Hold
				p.holdLeft[d] = 0
				p.nReverts++
				p.cReverts.Inc()
			}
		}
	}

	// 6. Remember this epoch's decision state for the next boundary. A
	// non-finite prediction is stored as 0 — a pure miss — so a primary
	// emitting garbage scores maximal error instead of poisoning the
	// EWMA with NaN (which would freeze the confidence switch).
	for d := 0; d < nd; d++ {
		p.prevExecPred[d] = finiteOrZero(p.priPred[d][choice[d]])
		p.prevTopPred[d] = finiteOrZero(activePred[d][top])
		p.prevChoice[d] = choice[d]
		p.lastChoice[d] = choice[d]
	}
	p.havePrev = true
}
