package dvfs

import (
	"testing"
	"testing/quick"

	"pcstall/internal/clock"
	"pcstall/internal/xrand"
)

var states = clock.DefaultGrid().States()

func TestEDnPNames(t *testing.T) {
	if EDP.Name() != "EDP" || ED2P.Name() != "ED2P" {
		t.Fatalf("names %q, %q", EDP.Name(), ED2P.Name())
	}
}

func TestEDnPPrefersFreeWork(t *testing.T) {
	// Same energy everywhere, more work at higher states: pick the top.
	predI := make([]float64, len(states))
	predE := make([]float64, len(states))
	for k := range states {
		predI[k] = float64(1000 + 100*k)
		predE[k] = 1
	}
	if got := ED2P.Choose(states, predI, predE); got != len(states)-1 {
		t.Fatalf("chose %d, want top state", got)
	}
}

func TestEDnPPrefersCheapIdle(t *testing.T) {
	// Flat work (memory-bound), rising energy: pick the bottom.
	predI := make([]float64, len(states))
	predE := make([]float64, len(states))
	for k := range states {
		predI[k] = 1000
		predE[k] = float64(1 + k)
	}
	if got := ED2P.Choose(states, predI, predE); got != 0 {
		t.Fatalf("chose %d, want bottom state", got)
	}
	if got := EDP.Choose(states, predI, predE); got != 0 {
		t.Fatalf("EDP chose %d, want bottom state", got)
	}
}

func TestEDnPWeighsSpeedMoreThanEDP(t *testing.T) {
	// With work scaling sublinearly vs energy, a higher n should never
	// choose a lower state than a lower n (more delay emphasis).
	rng := xrand.New(5)
	for trial := 0; trial < 200; trial++ {
		predI := make([]float64, len(states))
		predE := make([]float64, len(states))
		i0 := 100 + rng.Float64()*1000
		slope := rng.Float64() * 2
		for k := range states {
			f := float64(states[k])
			predI[k] = i0 + slope*i0*(f-1300)/900
			predE[k] = 1e-6 * (0.5 + f/1300*rng.Float64()*0 + f*f/1e6)
		}
		edp := EDP.Choose(states, predI, predE)
		ed2p := ED2P.Choose(states, predI, predE)
		if ed2p < edp {
			t.Fatalf("ED2P chose lower state (%d) than EDP (%d)", ed2p, edp)
		}
	}
}

func TestEDnPChoiceInRange(t *testing.T) {
	err := quick.Check(func(seed uint64, n uint8) bool {
		rng := xrand.New(seed)
		predI := make([]float64, len(states))
		predE := make([]float64, len(states))
		for k := range states {
			predI[k] = rng.Float64() * 1e4
			predE[k] = rng.Float64() * 1e-5
		}
		obj := EDnP{N: int(n%3) + 1}
		got := obj.Choose(states, predI, predE)
		return got >= 0 && got < len(states)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEDnPHandlesZeroWork(t *testing.T) {
	predI := make([]float64, len(states))
	predE := make([]float64, len(states))
	for k := range states {
		predE[k] = float64(k + 1)
	}
	// All-zero work: minimum energy (bottom state) wins.
	if got := ED2P.Choose(states, predI, predE); got != 0 {
		t.Fatalf("zero-work choice %d", got)
	}
}

func TestFixedPerfRespectsLimit(t *testing.T) {
	// Work scales linearly; energy rises steeply. With a 10% limit the
	// governor may only choose states within 90% of the top state's work.
	predI := make([]float64, len(states))
	predE := make([]float64, len(states))
	for k := range states {
		f := float64(states[k])
		predI[k] = f // linear in f
		predE[k] = f * f
	}
	obj := FixedPerf{Limit: 0.10}
	got := obj.Choose(states, predI, predE)
	floor := 0.9 * predI[len(states)-1]
	if predI[got] < floor {
		t.Fatalf("chose state %d with work %.0f below the floor %.0f", got, predI[got], floor)
	}
	// It should pick the cheapest feasible state, which is the lowest
	// state satisfying the floor.
	wantState := -1
	for k := range states {
		if predI[k] >= floor {
			wantState = k
			break
		}
	}
	if got != wantState {
		t.Fatalf("chose %d, want cheapest feasible %d", got, wantState)
	}
}

func TestFixedPerfFlatWorkloadPicksBottom(t *testing.T) {
	// Memory-bound: all states meet the floor, so minimum energy wins.
	predI := []float64{100, 100, 100, 100, 100, 100, 100, 100, 100, 100}
	predE := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	obj := FixedPerf{Limit: 0.05}
	if got := obj.Choose(states, predI, predE); got != 0 {
		t.Fatalf("chose %d, want 0", got)
	}
}

func TestFixedPerfName(t *testing.T) {
	if (FixedPerf{Limit: 0.05}).Name() != "Energy@5%" {
		t.Fatalf("name %q", (FixedPerf{Limit: 0.05}).Name())
	}
}

func TestFixedPerfAlwaysFeasible(t *testing.T) {
	// The top state is always feasible, so Choose never returns an
	// index outside the range even for adversarial curves.
	err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		predI := make([]float64, len(states))
		predE := make([]float64, len(states))
		for k := range states {
			predI[k] = rng.Float64() * 100
			predE[k] = rng.Float64()
		}
		got := FixedPerf{Limit: 0.05}.Choose(states, predI, predE)
		return got >= 0 && got < len(states)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestQoSTargetPicksCheapestFeasible(t *testing.T) {
	predI := []float64{100, 120, 140, 160, 180, 200, 220, 240, 260, 280}
	predE := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	obj := QoSTarget{InstrPerEpoch: 150}
	if got := obj.Choose(states, predI, predE); got != 3 {
		t.Fatalf("chose %d, want 3 (first state meeting 150)", got)
	}
}

func TestQoSTargetInfeasibleRunsFastest(t *testing.T) {
	predI := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 95}
	predE := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	obj := QoSTarget{InstrPerEpoch: 1000}
	if got := obj.Choose(states, predI, predE); got != 9 {
		t.Fatalf("infeasible epoch chose %d, want fastest", got)
	}
}

func TestQoSTargetName(t *testing.T) {
	if (QoSTarget{InstrPerEpoch: 500}).Name() != "QoS@500" {
		t.Fatalf("name %q", (QoSTarget{InstrPerEpoch: 500}).Name())
	}
}
