package dvfs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/core"
	"pcstall/internal/dvfs"
	"pcstall/internal/power"
	"pcstall/internal/sim"
	"pcstall/internal/telemetry"
	"pcstall/internal/workload"
)

// goldenRun executes one small run with the given registry attached.
func goldenRun(t *testing.T, design string, reg *telemetry.Registry) dvfs.Result {
	t.Helper()
	simCfg := sim.DefaultConfig(4)
	gen := workload.DefaultGenConfig(4)
	gen.Scale = 0.25
	app := workload.MustBuild("comd", gen)
	d, err := core.DesignByName(design)
	if err != nil {
		t.Fatal(err)
	}
	pm := power.DefaultModelFor(4)
	g, err := sim.New(simCfg, app.Kernels, app.Launches)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dvfs.Run(g, d.New(), dvfs.RunConfig{
		Epoch:   clock.Microsecond,
		Obj:     dvfs.ED2P,
		PM:      &pm,
		Record:  true,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTelemetryGolden is the determinism contract: a run with a registry
// attached must produce a byte-identical result to the same run without
// one. Telemetry observes the simulation; it never feeds back.
func TestTelemetryGolden(t *testing.T) {
	// ORACLE exercises the sampler bundle, PCSTALL the PC-table bundle.
	for _, design := range []string{"PCSTALL", "ORACLE", "ACCREAC"} {
		base := goldenRun(t, design, nil)
		reg := telemetry.New()
		instr := goldenRun(t, design, reg)
		bj, err := json.Marshal(base)
		if err != nil {
			t.Fatal(err)
		}
		ij, err := json.Marshal(instr)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bj, ij) {
			t.Fatalf("%s: telemetry perturbed the run:\nbase  %s\ninstr %s", design, bj, ij)
		}
	}
}

// TestTelemetryPopulated checks an instrumented run actually records:
// controller counters agree with the result, the sim bundle saw work,
// and policy-specific bundles (PC tables, oracle forks) fire.
func TestTelemetryPopulated(t *testing.T) {
	reg := telemetry.New()
	res := goldenRun(t, "PCSTALL", reg)
	s := reg.Snapshot()
	if s.Counters["dvfs_runs_total"] != 1 {
		t.Fatalf("runs counter %d", s.Counters["dvfs_runs_total"])
	}
	if got := s.Counters["dvfs_epochs_total"]; got != int64(res.Epochs) {
		t.Fatalf("epochs counter %d, result says %d", got, res.Epochs)
	}
	if got := s.Counters["dvfs_transitions_total"]; got != res.Transitions {
		t.Fatalf("transitions counter %d, result says %d", got, res.Transitions)
	}
	if got := s.Counters["sim_instructions_committed_total"]; got <= 0 {
		t.Fatal("no committed instructions recorded")
	}
	if s.Counters["dvfs_objective_evals_total"] <= 0 {
		t.Fatal("no objective evaluations recorded")
	}
	if s.Counters["predict_pc_table_lookups_total"] <= 0 {
		t.Fatal("PCSTALL run recorded no PC-table lookups")
	}
	if hs := s.Histograms["dvfs_epoch_span_ps"]; hs.Count != int64(res.Epochs) {
		t.Fatalf("epoch span histogram count %d, want %d", hs.Count, res.Epochs)
	}
	if over, under := s.Counters["predict_over_total"], s.Counters["predict_under_total"]; over+under <= 0 {
		t.Fatal("no prediction direction recorded for a predicting policy")
	}

	oreg := telemetry.New()
	goldenRun(t, "ORACLE", oreg)
	os := oreg.Snapshot()
	if os.Counters["oracle_forks_total"] <= 0 {
		t.Fatal("ORACLE run recorded no forks")
	}
	if os.Counters["oracle_preexec_ps_total"] <= 0 {
		t.Fatal("ORACLE run recorded no pre-execute time")
	}
}
