package dvfs_test

import (
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/dvfs"
	"pcstall/internal/power"
)

func TestHistoryRunsAndPredicts(t *testing.T) {
	pm := power.DefaultModelFor(2)
	g := freshGPU(t, "comd", 2)
	res, err := dvfs.Run(g, dvfs.NewHistory(), dvfs.RunConfig{
		Epoch: clock.Microsecond, Obj: dvfs.ED2P, PM: &pm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("HIST run truncated")
	}
	if res.AccuracyN == 0 {
		t.Fatal("HIST produced no scored predictions")
	}
	if res.Accuracy <= 0.2 {
		t.Fatalf("HIST accuracy %.3f implausibly low", res.Accuracy)
	}
}

func TestHistoryLearnsRepeatingPhases(t *testing.T) {
	// On a strongly phased app the history table must outpredict pure
	// noise: accuracy well above zero and the policy must visit more
	// than one frequency (it reacts to phases).
	pm := power.DefaultModelFor(2)
	g := freshGPU(t, "BwdBN", 2)
	res, err := dvfs.Run(g, dvfs.NewHistory(), dvfs.RunConfig{
		Epoch: clock.Microsecond, Obj: dvfs.ED2P, PM: &pm,
	})
	if err != nil {
		t.Fatal(err)
	}
	states := 0
	for _, share := range res.Residency {
		if share > 0.01 {
			states++
		}
	}
	if states < 2 {
		t.Fatalf("HIST used %d states on a phased app", states)
	}
}

func TestQLearnRunsAndConverges(t *testing.T) {
	pm := power.DefaultModelFor(2)
	g := freshGPU(t, "xsbench", 2)
	res, err := dvfs.Run(g, dvfs.NewQLearn(), dvfs.RunConfig{
		Epoch: clock.Microsecond, Obj: dvfs.ED2P, PM: &pm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("QLEARN run truncated")
	}
	// QLEARN fuses prediction and selection: it must not contribute
	// accuracy samples.
	if res.AccuracyN != 0 {
		t.Fatalf("QLEARN reported %d accuracy samples", res.AccuracyN)
	}
	// On a memory-bound app the learner should discover that low
	// frequencies score better: the bottom half of the grid should
	// dominate residency despite epsilon exploration.
	low := 0.0
	for k := 0; k < 5; k++ {
		low += res.Residency[k]
	}
	if low < 0.5 {
		t.Fatalf("QLEARN spent only %.0f%% in the lower half of the grid on xsbench", low*100)
	}
}

func TestQLearnDeterministicSeed(t *testing.T) {
	pm := power.DefaultModelFor(2)
	run := func() dvfs.Result {
		g := freshGPU(t, "comd", 2)
		r, err := dvfs.Run(g, dvfs.NewQLearn(), dvfs.RunConfig{
			Epoch: clock.Microsecond, Obj: dvfs.ED2P, PM: &pm,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Totals != b.Totals || a.Transitions != b.Transitions {
		t.Fatal("QLEARN runs with identical seeds diverged")
	}
}

func TestExtensionsBeatNothingButRun(t *testing.T) {
	// Sanity envelope: both extensions complete every ablation app and
	// produce energy within 3x of the static baseline (they are
	// heuristics, not disasters).
	pm := power.DefaultModelFor(2)
	for _, app := range []string{"comd", "dgemm"} {
		base, err := dvfs.Run(freshGPU(t, app, 2), &dvfs.Static{F: 1700}, dvfs.RunConfig{
			Epoch: clock.Microsecond, Obj: dvfs.ED2P, PM: &pm,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []dvfs.Policy{dvfs.NewHistory(), dvfs.NewQLearn()} {
			r, err := dvfs.Run(freshGPU(t, app, 2), pol, dvfs.RunConfig{
				Epoch: clock.Microsecond, Obj: dvfs.ED2P, PM: &pm,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Totals.ED2P() > 3*base.Totals.ED2P() {
				t.Errorf("%s on %s: ED2P %.3gx static", pol.Name(), app,
					r.Totals.ED2P()/base.Totals.ED2P())
			}
		}
	}
}
